//! Fault-injection integration suite for the df-service job server.
//!
//! Every robustness claim in docs/SERVICE.md is asserted here via the
//! structured JobEvent stream — never via timing:
//!
//! * admission control rejects over-quota submissions (`rejected_overload`)
//!   while queued work still drains;
//! * a stall past the per-attempt deadline produces `timed_out` and
//!   leaves no partial output (a resubmission recomputes, it does not
//!   hit the cache);
//! * a worker panic is isolated, retried, and the service keeps serving;
//! * a cached resubmission replays the byte-identical result document
//!   (digest-checked);
//! * a corrupted cache entry is detected, evicted, and recomputed;
//! * the whole protocol round-trips over the Unix socket, including a
//!   draining shutdown.

use df_service::{
    digest_hex, serve, EventSink, FaultSpec, JobEvent, JobPayload, Request, Service,
    ServiceConfig, StateDir, SubmitOptions,
};
use dragonfly_core::df_engine::ArbiterPolicy;
use dragonfly_core::df_routing::MechanismSpec;
use dragonfly_core::df_topology::{Arrangement, DragonflyParams};
use dragonfly_core::df_traffic::PatternSpec;
use dragonfly_core::df_workload::{InjectionSpec, JobSpec, PlacementSpec, ScenarioSpec, SweepSpec};
use dragonfly_core::RunCtl;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A sub-second two-job scenario on the 72-node Figure 1 network.
fn tiny_scenario(name: &str) -> ScenarioSpec {
    ScenarioSpec {
        name: name.into(),
        params: DragonflyParams::figure1(),
        arrangement: Arrangement::Palmtree,
        mechanisms: vec![MechanismSpec::InTransitMm],
        arbiter: ArbiterPolicy::TransitPriority,
        warmup_cycles: 100,
        measure_cycles: 200,
        telemetry: None,
        shards: None,
        jobs: vec![
            JobSpec {
                name: "victim".into(),
                placement: PlacementSpec::ConsecutiveGroups { first: 0, count: 2, slots: None },
                pattern: PatternSpec::Uniform,
                injection: InjectionSpec::Bernoulli,
                load: 0.2,
                start_cycle: None,
                stop_cycle: None,
            },
            JobSpec {
                name: "aggressor".into(),
                placement: PlacementSpec::ConsecutiveGroups { first: 2, count: 2, slots: None },
                pattern: PatternSpec::AdvConsecutive { spread: None },
                injection: InjectionSpec::Bernoulli,
                load: 0.3,
                start_cycle: None,
                stop_cycle: None,
            },
        ],
    }
}

fn collecting_sink() -> (EventSink, Arc<Mutex<Vec<JobEvent>>>) {
    let events = Arc::new(Mutex::new(Vec::new()));
    let sunk = Arc::clone(&events);
    let sink: EventSink = Arc::new(move |e| sunk.lock().unwrap().push(e));
    (sink, events)
}

/// Poll until `job` has a terminal event, returning its full stream.
fn wait_terminal(events: &Arc<Mutex<Vec<JobEvent>>>, job: u64) -> Vec<JobEvent> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        {
            let evs = events.lock().unwrap();
            if evs.iter().any(|e| e.job() == Some(job) && e.is_terminal()) {
                return evs.iter().filter(|e| e.job() == Some(job)).cloned().collect();
            }
        }
        assert!(Instant::now() < deadline, "no terminal event for job {job}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn wait_started(events: &Arc<Mutex<Vec<JobEvent>>>, job: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !events
        .lock()
        .unwrap()
        .iter()
        .any(|e| matches!(e, JobEvent::Started { job: j, .. } if *j == job))
    {
        assert!(Instant::now() < deadline, "job {job} never started");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn one_seed(fault: Option<FaultSpec>, deadline_ms: Option<u64>) -> SubmitOptions {
    SubmitOptions { seeds: Some(vec![1]), deadline_ms, fault }
}

/// A 2-mechanism × 2-load sweep over the tiny scenario: 4 `(cell,
/// seed)` units under `one_seed`, small enough that a full run is
/// sub-second but wide enough that a mid-sweep interruption leaves
/// both finished and unfinished units behind.
fn tiny_sweep(name: &str) -> SweepSpec {
    SweepSpec {
        name: name.into(),
        base: tiny_scenario(name),
        loads: Some(vec![0.2, 0.4]),
        load_jobs: None,
        placements: None,
        patterns: None,
        pattern_jobs: None,
        mechanisms: Some(vec![MechanismSpec::Min, MechanismSpec::InTransitMm]),
    }
}

/// A fresh per-test state directory (removed by the test on success).
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("df-state-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path) -> ServiceConfig {
    ServiceConfig { workers: 1, state_dir: Some(dir.to_path_buf()), ..ServiceConfig::default() }
}

fn count_rows(evs: &[JobEvent]) -> usize {
    evs.iter().filter(|e| matches!(e, JobEvent::SweepRows { .. })).count()
}

fn recovered_of(evs: &[JobEvent]) -> Option<(u64, u64)> {
    evs.iter().find_map(|e| match e {
        JobEvent::Recovered { cells_done, cells_total, .. } => Some((*cells_done, *cells_total)),
        _ => None,
    })
}

#[test]
fn over_quota_submissions_are_rejected_while_queued_work_drains() {
    let svc = Service::new(ServiceConfig {
        workers: 1,
        queue_depth: 1,
        ..ServiceConfig::default()
    });
    let (sink, events) = collecting_sink();
    // Job A occupies the single worker via a long stall.
    let stall = FaultSpec {
        stall_at_cycle: Some(10),
        stall_ms: Some(500),
        ..FaultSpec::default()
    };
    let a = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-admission")),
        one_seed(Some(stall), None),
        Arc::clone(&sink),
    );
    wait_started(&events, a);
    // Job B fills the single queue slot; job C is over quota.
    let b = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-admission-b")),
        one_seed(None, None),
        Arc::clone(&sink),
    );
    let c = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-admission-c")),
        one_seed(None, None),
        Arc::clone(&sink),
    );
    let evs_c = wait_terminal(&events, c);
    match &evs_c[..] {
        [JobEvent::RejectedOverload { queued, limit, .. }] => {
            assert_eq!((*queued, *limit), (1, 1));
        }
        other => panic!("expected a lone rejected_overload, got {other:?}"),
    }
    // The rejection did not disturb admitted work: A and B both complete.
    assert_eq!(wait_terminal(&events, a).last().unwrap().label(), "completed");
    assert_eq!(wait_terminal(&events, b).last().unwrap().label(), "completed");
    svc.shutdown();
}

#[test]
fn stall_past_deadline_times_out_and_leaves_no_partial_output() {
    let svc = Service::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let (sink, events) = collecting_sink();
    let stall = FaultSpec {
        stall_at_cycle: Some(50),
        stall_ms: Some(200),
        ..FaultSpec::default()
    };
    let job = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-deadline")),
        one_seed(Some(stall), Some(40)),
        Arc::clone(&sink),
    );
    let evs = wait_terminal(&events, job);
    match evs.last().unwrap() {
        JobEvent::TimedOut { at_cycle, .. } => {
            assert!(*at_cycle >= 50, "deadline fired during the stall, got {at_cycle}")
        }
        other => panic!("expected timed_out, got {other:?}"),
    }
    // No partial output: the same spec resubmitted must recompute
    // (`completed`), not replay a cache entry (`cached`).
    let clean = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-deadline")),
        one_seed(None, None),
        sink,
    );
    let evs2 = wait_terminal(&events, clean);
    assert_eq!(evs2.last().unwrap().label(), "completed");
    svc.shutdown();
}

#[test]
fn worker_panic_is_isolated_retried_and_the_service_keeps_serving() {
    let svc = Service::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let (sink, events) = collecting_sink();
    // Panics on attempt 1 only: the retry runs clean.
    let fault = FaultSpec { panic_at_cycle: Some(120), ..FaultSpec::default() };
    let job = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-panic")),
        one_seed(Some(fault), None),
        Arc::clone(&sink),
    );
    let evs = wait_terminal(&events, job);
    let labels: Vec<_> = evs.iter().map(|e| e.label()).collect();
    assert!(labels.contains(&"retried"), "{labels:?}");
    assert_eq!(*labels.last().unwrap(), "completed", "{labels:?}");
    // Exhausted retries end in `failed` — and the worker survives.
    let poison = FaultSpec {
        panic_at_cycle: Some(120),
        panic_attempts: Some(u32::MAX),
        ..FaultSpec::default()
    };
    let doomed = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-poison")),
        one_seed(Some(poison), None),
        Arc::clone(&sink),
    );
    let evs2 = wait_terminal(&events, doomed);
    match evs2.last().unwrap() {
        JobEvent::Failed { attempts, error, .. } => {
            assert_eq!(*attempts, 3, "default max_retries=2 gives 3 attempts");
            assert!(error.contains("injected fault"), "{error}");
        }
        other => panic!("expected failed, got {other:?}"),
    }
    let next = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-after-poison")),
        one_seed(None, None),
        sink,
    );
    assert_eq!(wait_terminal(&events, next).last().unwrap().label(), "completed");
    svc.shutdown();
}

#[test]
fn cached_resubmission_is_byte_identical_and_digest_checked() {
    let svc = Service::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let (sink, events) = collecting_sink();
    let job = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-cache")),
        one_seed(None, None),
        Arc::clone(&sink),
    );
    let evs = wait_terminal(&events, job);
    let (key1, digest1, result1) = match evs.last().unwrap() {
        JobEvent::Completed { key, digest, result, .. } => {
            (key.clone(), digest.clone(), result.clone())
        }
        other => panic!("expected completed, got {other:?}"),
    };
    // The advertised digest is the real content digest of the document.
    assert_eq!(digest1, digest_hex(result1.as_bytes()));
    let again = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-cache")),
        one_seed(None, None),
        sink,
    );
    let evs2 = wait_terminal(&events, again);
    match &evs2[..] {
        [JobEvent::Cached { key, digest, result, .. }] => {
            assert_eq!(*key, key1);
            assert_eq!(*digest, digest1);
            assert_eq!(*result, result1, "cache replay must be byte-identical");
        }
        other => panic!("expected a lone cached event, got {other:?}"),
    }
    svc.shutdown();
}

#[test]
fn corrupted_cache_entry_is_detected_and_recomputed() {
    let svc = Service::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let (sink, events) = collecting_sink();
    let fault = FaultSpec { corrupt_cache: Some(true), ..FaultSpec::default() };
    let job = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-rot")),
        one_seed(Some(fault), None),
        Arc::clone(&sink),
    );
    let evs = wait_terminal(&events, job);
    let result1 = match evs.last().unwrap() {
        JobEvent::Completed { result, .. } => result.clone(),
        other => panic!("expected completed, got {other:?}"),
    };
    // The rotted entry must never be served: the resubmission reports
    // the corruption and recomputes the byte-identical document.
    let again = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-rot")),
        one_seed(None, None),
        sink,
    );
    let evs2 = wait_terminal(&events, again);
    let labels: Vec<_> = evs2.iter().map(|e| e.label()).collect();
    assert_eq!(labels.first().unwrap(), &"cache_corrupt", "{labels:?}");
    match evs2.last().unwrap() {
        JobEvent::Completed { result, digest, .. } => {
            assert_eq!(*result, result1, "recompute must reproduce the original bytes");
            assert_eq!(*digest, digest_hex(result.as_bytes()));
        }
        other => panic!("expected completed, got {other:?}"),
    }
    svc.shutdown();
}

#[test]
fn cancelling_a_queued_job_is_observed_before_it_simulates() {
    let svc = Service::new(ServiceConfig {
        workers: 1,
        queue_depth: 4,
        ..ServiceConfig::default()
    });
    let (sink, events) = collecting_sink();
    let stall = FaultSpec {
        stall_at_cycle: Some(10),
        stall_ms: Some(400),
        ..FaultSpec::default()
    };
    let blocker = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-blocker")),
        one_seed(Some(stall), None),
        Arc::clone(&sink),
    );
    wait_started(&events, blocker);
    let queued = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-queued")),
        one_seed(None, None),
        sink,
    );
    assert!(svc.cancel(queued), "queued job must be cancellable");
    let evs = wait_terminal(&events, queued);
    match evs.last().unwrap() {
        JobEvent::Cancelled { at_cycle, .. } => {
            assert_eq!(*at_cycle, 0, "cancellation observed at the first checkpoint")
        }
        other => panic!("expected cancelled, got {other:?}"),
    }
    assert_eq!(wait_terminal(&events, blocker).last().unwrap().label(), "completed");
    svc.shutdown();
}

#[test]
fn full_protocol_round_trips_over_the_unix_socket() {
    let socket = std::env::temp_dir()
        .join(format!("df-service-it-{}.sock", std::process::id()));
    let service = Arc::new(Service::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    }));
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || serve(service, &socket, None))
    };
    let mut client = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match UnixStream::connect(&socket) {
                Ok(s) => break s,
                Err(_) => {
                    assert!(Instant::now() < deadline, "server socket never came up");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    };
    let mut reader = BufReader::new(client.try_clone().unwrap());
    let read_event = |reader: &mut BufReader<UnixStream>| -> JobEvent {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        serde_json::from_str(&line).unwrap()
    };

    let submit = Request::SubmitScenario {
        spec: tiny_scenario("svc-wire"),
        options: one_seed(None, None),
    };
    writeln!(client, "{}", serde_json::to_string(&submit).unwrap()).unwrap();
    let accepted = read_event(&mut reader);
    assert_eq!(accepted.label(), "accepted");
    let job = accepted.job().unwrap();
    // Drain non-terminal events until this job's terminal one.
    let (digest, result) = loop {
        let event = read_event(&mut reader);
        assert_eq!(event.job(), Some(job));
        if let JobEvent::Completed { digest, result, .. } = &event {
            break (digest.clone(), result.clone());
        }
        assert!(!event.is_terminal(), "unexpected terminal event {event:?}");
    };
    assert_eq!(digest, digest_hex(result.as_bytes()));

    // Same submission again: a lone `cached` event, byte-identical.
    writeln!(client, "{}", serde_json::to_string(&submit).unwrap()).unwrap();
    match read_event(&mut reader) {
        JobEvent::Cached { digest: d2, result: r2, .. } => {
            assert_eq!(d2, digest);
            assert_eq!(r2, result);
        }
        other => panic!("expected cached, got {other:?}"),
    }

    writeln!(client, "{}", serde_json::to_string(&Request::Shutdown).unwrap()).unwrap();
    match read_event(&mut reader) {
        JobEvent::ShuttingDown { .. } => {}
        other => panic!("expected shutting_down, got {other:?}"),
    }
    server.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&socket);
}

/// The tentpole end to end, in-process: a sweep interrupted after K
/// unit commits (the cooperative stand-in for `kill -9`) resumes on a
/// fresh Service over the same state dir, recomputes only the `N - K`
/// unfinished units, and produces the byte-identical table an
/// uninterrupted run would have — after which the result is cached
/// and the checkpoint is gone.
#[test]
fn interrupted_sweep_resumes_from_its_checkpoint_byte_identically() {
    let dir = state_dir("resume");
    let payload = JobPayload::Sweep(tiny_sweep("svc-resume"));
    let uninterrupted = payload.execute(&[1], &RunCtl::NONE).unwrap();

    let svc = Service::open(durable_config(&dir)).unwrap();
    let (sink, events) = collecting_sink();
    let fault = FaultSpec { cancel_after_cells: Some(2), ..FaultSpec::default() };
    let job = svc.submit(payload.clone(), one_seed(Some(fault), None), Arc::clone(&sink));
    let evs = wait_terminal(&events, job);
    let k = count_rows(&evs);
    svc.shutdown();

    if evs.last().unwrap().label() == "completed" {
        // Only reachable on a many-core box where every unit was
        // already past its last cancellation check when the fault
        // fired: nothing to resume, but the cache must still be warm.
        assert_eq!(k, 4, "a completed sweep streamed every unit");
    } else {
        assert_eq!(evs.last().unwrap().label(), "cancelled");
        assert!((2..4).contains(&k), "cancel_after_cells=2 commits 2..4 of 4 units, got {k}");

        // "Restart": a fresh Service over the same state dir.
        let svc2 = Service::open(durable_config(&dir)).unwrap();
        let (sink2, events2) = collecting_sink();
        let job2 = svc2.submit(payload.clone(), one_seed(None, None), Arc::clone(&sink2));
        let evs2 = wait_terminal(&events2, job2);
        assert_eq!(
            recovered_of(&evs2),
            Some((k as u64, 4)),
            "every committed unit must be recovered, none invented"
        );
        assert_eq!(count_rows(&evs2), 4 - k, "only unfinished units recompute");
        let (key, result) = match evs2.last().unwrap() {
            JobEvent::Completed { key, result, .. } => (key.clone(), result.clone()),
            other => panic!("expected completed, got {other:?}"),
        };
        assert_eq!(result, uninterrupted, "recovered table must be byte-identical");

        // The completed result consumed its checkpoint and entered the
        // durable cache: a resubmission is a pure replay.
        let state = StateDir::open(&dir).unwrap();
        assert!(!state.has_checkpoint(&key), "completion must remove the checkpoint");
        let job3 = svc2.submit(payload, one_seed(None, None), sink2);
        let evs3 = wait_terminal(&events2, job3);
        match evs3.last().unwrap() {
            JobEvent::Cached { result: replay, .. } => assert_eq!(*replay, uninterrupted),
            other => panic!("expected cached, got {other:?}"),
        }
        svc2.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A rotted checkpoint line is dropped at recovery — its unit
/// recomputes along with the unfinished ones — and the final table is
/// still byte-identical.
#[test]
fn rotted_checkpoint_line_is_dropped_and_recomputed() {
    let dir = state_dir("rotline");
    let payload = JobPayload::Sweep(tiny_sweep("svc-rotline"));
    let uninterrupted = payload.execute(&[1], &RunCtl::NONE).unwrap();

    let svc = Service::open(durable_config(&dir)).unwrap();
    let (sink, events) = collecting_sink();
    let fault = FaultSpec {
        cancel_after_cells: Some(3),
        rot_checkpoint_line: Some(2),
        ..FaultSpec::default()
    };
    let job = svc.submit(payload.clone(), one_seed(Some(fault), None), Arc::clone(&sink));
    let evs = wait_terminal(&events, job);
    let k = count_rows(&evs);
    svc.shutdown();

    if evs.last().unwrap().label() == "cancelled" {
        assert!((3..4).contains(&k), "cancel_after_cells=3 commits 3..4 of 4 units, got {k}");
        let svc2 = Service::open(durable_config(&dir)).unwrap();
        let (sink2, events2) = collecting_sink();
        let job2 = svc2.submit(payload, one_seed(None, None), sink2);
        let evs2 = wait_terminal(&events2, job2);
        // One committed line was rotted, so exactly k-1 units survive
        // the digest check and k-1 fewer units recompute.
        assert_eq!(recovered_of(&evs2), Some((k as u64 - 1, 4)));
        assert_eq!(count_rows(&evs2), 4 - (k - 1));
        match evs2.last().unwrap() {
            JobEvent::Completed { result, .. } => assert_eq!(*result, uninterrupted),
            other => panic!("expected completed, got {other:?}"),
        }
        svc2.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Completed results survive a service restart: the spill reloads
/// (digest-verified) and a resubmission replays `cached`,
/// byte-identical — while a rotted spill is quarantined at startup
/// and surfaces as a `cache_corrupt` startup event, then recomputes.
#[test]
fn durable_cache_replays_across_restart_and_quarantines_rot() {
    let dir = state_dir("replay");
    let svc = Service::open(durable_config(&dir)).unwrap();
    let (sink, events) = collecting_sink();
    let job = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-durable")),
        one_seed(None, None),
        Arc::clone(&sink),
    );
    let evs = wait_terminal(&events, job);
    let (digest1, result1) = match evs.last().unwrap() {
        JobEvent::Completed { digest, result, .. } => (digest.clone(), result.clone()),
        other => panic!("expected completed, got {other:?}"),
    };
    svc.shutdown();

    // Restart 1: the spill reloads and the resubmission never runs.
    let svc2 = Service::open(durable_config(&dir)).unwrap();
    assert_eq!(svc2.startup_report().entries.len(), 1);
    assert!(svc2.startup_events().is_empty());
    let (sink2, events2) = collecting_sink();
    let job2 = svc2.submit(
        JobPayload::Scenario(tiny_scenario("svc-durable")),
        one_seed(None, None),
        Arc::clone(&sink2),
    );
    let evs2 = wait_terminal(&events2, job2);
    match evs2.last().unwrap() {
        JobEvent::Cached { digest, result, .. } => {
            assert_eq!(*digest, digest1);
            assert_eq!(*result, result1, "replay across restart must be byte-identical");
        }
        other => panic!("expected cached, got {other:?}"),
    }
    // Set up restart 2: a fresh spec computed with the corrupt_cache
    // fault rots its own entry both in memory and on disk.
    let rot = FaultSpec { corrupt_cache: Some(true), ..FaultSpec::default() };
    let job3 = svc2.submit(
        JobPayload::Scenario(tiny_scenario("svc-durable-rot")),
        one_seed(Some(rot), None),
        sink2,
    );
    assert_eq!(wait_terminal(&events2, job3).last().unwrap().label(), "completed");
    svc2.shutdown();

    // Restart 2: the rotted spill is quarantined, not loaded; the
    // clean one still replays.
    let svc3 = Service::open(durable_config(&dir)).unwrap();
    assert_eq!(svc3.startup_report().entries.len(), 1);
    assert_eq!(svc3.startup_report().quarantined.len(), 1);
    let startup = svc3.startup_events();
    assert_eq!(startup.len(), 1);
    assert_eq!(startup[0].label(), "cache_corrupt");
    let (sink3, events3) = collecting_sink();
    let job4 = svc3.submit(
        JobPayload::Scenario(tiny_scenario("svc-durable-rot")),
        one_seed(None, None),
        sink3,
    );
    let evs4 = wait_terminal(&events3, job4);
    assert_eq!(
        evs4.last().unwrap().label(),
        "completed",
        "the quarantined key recomputes instead of serving bad bytes"
    );
    svc3.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
