//! Workload-subsystem integration tests: scenario serde round-trips
//! (property-based), cross-run determinism, trace record/replay
//! bit-identity, burst injection, and the bundled interference scenario's
//! qualitative claim.

use dragonfly_core::df_workload::{
    InjectionSpec, JobSpec, PlacementSpec, ScenarioSpec, TraceRecorder,
};
use dragonfly_core::prelude::*;
use proptest::prelude::*;

fn scenario_path(name: &str) -> String {
    format!("{}/../scenarios/{name}", env!("CARGO_MANIFEST_DIR"))
}

// ---------------------------------------------------------------------
// Property-based serde round-trips
// ---------------------------------------------------------------------

fn arb_leaf_pattern() -> BoxedStrategy<PatternSpec> {
    prop_oneof![
        Just(PatternSpec::Uniform),
        (1u32..3).prop_map(|offset| PatternSpec::Adversarial { offset }),
        Just(PatternSpec::AdvConsecutive { spread: None }),
        (1u32..4).prop_map(|s| PatternSpec::AdvConsecutive { spread: Some(s) }),
        Just(PatternSpec::GroupLocal),
        Just(PatternSpec::Permutation),
        (0u32..8, 1u32..10).prop_map(|(hot, f)| PatternSpec::HotSpot {
            hot,
            fraction: f as f64 / 10.0,
        }),
    ]
    .boxed()
}

fn arb_pattern() -> BoxedStrategy<PatternSpec> {
    // One level of nesting on each side of a mix is enough to exercise
    // the recursive serde path (mix-of-mixes included).
    let mix = |inner: BoxedStrategy<PatternSpec>| {
        (inner.prop_map(Box::new), arb_leaf_pattern().prop_map(Box::new), 1u32..10).prop_map(
            |(first, second, f)| PatternSpec::Mix {
                first,
                second,
                first_fraction: f as f64 / 10.0,
            },
        )
    };
    prop_oneof![
        arb_leaf_pattern(),
        mix(arb_leaf_pattern()),
        mix(mix(arb_leaf_pattern()).boxed()),
    ]
    .boxed()
}

fn arb_injection() -> BoxedStrategy<InjectionSpec> {
    prop_oneof![
        Just(InjectionSpec::Bernoulli),
        Just(InjectionSpec::Poisson),
        (2u32..200, 0u32..200).prop_map(|(b, i)| InjectionSpec::OnOff {
            mean_burst: b as f64,
            mean_idle: i as f64,
        }),
        Just(InjectionSpec::Trace { path: "traces/run.json".into() }),
    ]
    .boxed()
}

fn arb_placement() -> BoxedStrategy<PlacementSpec> {
    let slots = prop_oneof![
        Just(None),
        Just(Some(vec![0u32])),
        Just(Some(vec![0u32, 2])),
    ];
    prop_oneof![
        (0u32..4, 1u32..4, slots.boxed()).prop_map(|(first, count, slots)| {
            PlacementSpec::ConsecutiveGroups { first, count, slots }
        }),
        prop::collection::vec(0u32..19, 1..4)
            .prop_map(|groups| PlacementSpec::Groups { groups, slots: None }),
        (1u32..5).prop_map(|count| PlacementSpec::RandomGroups { count, slots: None }),
        (1u32..50, 0u32..2).prop_map(|(count, o)| PlacementSpec::RoundRobinRouters {
            count,
            offset: if o == 0 { None } else { Some(o) },
        }),
        prop::collection::vec(0u32..342, 1..6)
            .prop_map(|nodes| PlacementSpec::Nodes { nodes }),
    ]
    .boxed()
}

fn arb_scenario() -> BoxedStrategy<ScenarioSpec> {
    (
        prop::collection::vec(
            (arb_placement(), arb_pattern(), arb_injection(), 1u32..8),
            1..4,
        ),
        1u32..4,
        any::<u64>(),
    )
        .prop_map(|(jobs, n_mech, _salt)| ScenarioSpec {
            name: "prop".into(),
            params: DragonflyParams::small(),
            arrangement: Arrangement::Palmtree,
            mechanisms: MechanismSpec::PAPER_SET[..n_mech as usize].to_vec(),
            arbiter: ArbiterPolicy::TransitPriority,
            warmup_cycles: 100,
            measure_cycles: 200,
            telemetry: None,
            shards: None,
            jobs: jobs
                .into_iter()
                .enumerate()
                .map(|(i, (placement, pattern, injection, load))| JobSpec {
                    name: format!("job{i}"),
                    placement,
                    pattern,
                    injection,
                    load: load as f64 / 10.0,
                    start_cycle: if i % 2 == 0 { None } else { Some(50) },
                    stop_cycle: if i % 3 == 0 { None } else { Some(250) },
                })
                .collect(),
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pattern_spec_roundtrips(spec in arb_pattern()) {
        let json = serde_json::to_string(&spec).unwrap();
        let back: PatternSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(spec, back);
    }

    #[test]
    fn scenario_spec_roundtrips(spec in arb_scenario()) {
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).unwrap();
        prop_assert_eq!(spec, back);
    }
}

// ---------------------------------------------------------------------
// Determinism and trace replay
// ---------------------------------------------------------------------

/// A fast one-job scenario on the Figure 1 network.
fn fig1_scenario(injection: InjectionSpec, load: f64) -> ScenarioSpec {
    ScenarioSpec {
        name: "fig1".into(),
        params: DragonflyParams::figure1(),
        arrangement: Arrangement::Palmtree,
        mechanisms: vec![MechanismSpec::InTransitMm],
        arbiter: ArbiterPolicy::TransitPriority,
        warmup_cycles: 500,
        measure_cycles: 1_500,
        telemetry: None,
        shards: None,
        jobs: vec![JobSpec {
            name: "app".into(),
            placement: PlacementSpec::ConsecutiveGroups { first: 0, count: 3, slots: None },
            pattern: PatternSpec::Uniform,
            injection,
            load,
            start_cycle: None,
            stop_cycle: None,
        }],
    }
}

#[test]
fn same_seed_gives_identical_per_job_results() {
    let spec = fig1_scenario(InjectionSpec::Bernoulli, 0.3);
    let a = run_scenario_once(&spec, MechanismSpec::InTransitMm, 5, None).unwrap();
    let b = run_scenario_once(&spec, MechanismSpec::InTransitMm, 5, None).unwrap();
    assert_eq!(a.delivered_packets, b.delivered_packets);
    assert_eq!(a.injected_per_router, b.injected_per_router);
    assert_eq!(a.per_job.len(), b.per_job.len());
    for (x, y) in a.per_job.iter().zip(&b.per_job) {
        assert_eq!(x.offered, y.offered);
        assert_eq!(x.throughput, y.throughput);
        assert_eq!(x.avg_latency, y.avg_latency);
        assert_eq!(x.delivered_packets, y.delivered_packets);
        assert_eq!(x.fairness.cov, y.fairness.cov);
    }
}

#[test]
fn recorded_trace_replays_bit_identically() {
    // Record a Bernoulli run, replay the trace through the Trace
    // injection process, and require identical delivery behaviour.
    let spec = fig1_scenario(InjectionSpec::Bernoulli, 0.35);
    let mut recorders = vec![TraceRecorder::new()];
    let original =
        run_scenario_once(&spec, MechanismSpec::InTransitMm, 9, Some(&mut recorders)).unwrap();
    let recorder = &recorders[0];
    assert!(!recorder.events().is_empty());

    let dir = std::env::temp_dir().join("df_workload_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("replay.json");
    recorder.save(path.to_str().unwrap()).unwrap();

    let mut replay_spec = spec.clone();
    replay_spec.jobs[0].injection =
        InjectionSpec::Trace { path: path.to_str().unwrap().to_string() };
    let replayed =
        run_scenario_once(&replay_spec, MechanismSpec::InTransitMm, 9, None).unwrap();

    assert_eq!(original.delivered_packets, replayed.delivered_packets);
    assert_eq!(original.injected_per_router, replayed.injected_per_router);
    assert_eq!(original.avg_latency, replayed.avg_latency);
    assert_eq!(original.per_job[0].offered, replayed.per_job[0].offered);
    assert_eq!(original.per_job[0].throughput, replayed.per_job[0].throughput);
}

#[test]
fn on_off_bursts_deliver_comparable_load_with_spikier_queueing() {
    // The on/off process at the same mean load must deliver a comparable
    // packet volume but with visibly burstier queueing (higher latency).
    let smooth = run_scenario_once(
        &fig1_scenario(InjectionSpec::Bernoulli, 0.3),
        MechanismSpec::InTransitMm,
        3,
        None,
    )
    .unwrap();
    let bursty = run_scenario_once(
        &fig1_scenario(InjectionSpec::OnOff { mean_burst: 40.0, mean_idle: 120.0 }, 0.3),
        MechanismSpec::InTransitMm,
        3,
        None,
    )
    .unwrap();
    let ratio =
        bursty.per_job[0].throughput / smooth.per_job[0].throughput;
    assert!((0.7..1.3).contains(&ratio), "load ratio {ratio}");
    assert!(
        bursty.per_job[0].avg_latency > smooth.per_job[0].avg_latency,
        "bursts should queue more: {} vs {}",
        bursty.per_job[0].avg_latency,
        smooth.per_job[0].avg_latency
    );
}

// ---------------------------------------------------------------------
// Bundled scenarios
// ---------------------------------------------------------------------

#[test]
fn bundled_scenarios_parse_and_validate() {
    for name in ["paper_job_anatomy.json", "interference_advc_vs_uniform.json"] {
        let spec = ScenarioSpec::load(&scenario_path(name)).unwrap();
        spec.validate(1).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn advc_aggressor_starves_victim_under_in_transit_crg_only() {
    // The bundled interference scenario's claim, at a reduced cycle
    // budget: under In-Trns-CRG the ADVc aggressor measurably depresses
    // the uniform victim below its offered load, while Obl-CRG serves
    // the victim in full.
    let mut spec =
        ScenarioSpec::load(&scenario_path("interference_advc_vs_uniform.json")).unwrap();
    spec.warmup_cycles = 2_000;
    spec.measure_cycles = 4_000;
    let adaptive = run_scenario_once(&spec, MechanismSpec::InTransitCrg, 11, None).unwrap();
    let oblivious = run_scenario_once(&spec, MechanismSpec::ObliviousCrg, 11, None).unwrap();

    let victim_adaptive = &adaptive.per_job[1];
    let victim_oblivious = &oblivious.per_job[1];
    assert_eq!(victim_adaptive.job, "victim");
    // Obl-CRG: accepted ≈ offered.
    assert!(
        victim_oblivious.throughput > victim_oblivious.offered * 0.97,
        "oblivious victim starved: {} vs offered {}",
        victim_oblivious.throughput,
        victim_oblivious.offered
    );
    // In-Trns-CRG: measurably depressed.
    assert!(
        victim_adaptive.throughput < victim_adaptive.offered * 0.92,
        "adaptive victim not depressed: {} vs offered {}",
        victim_adaptive.throughput,
        victim_adaptive.offered
    );
    assert!(
        victim_adaptive.throughput < victim_oblivious.throughput * 0.95,
        "no cross-mechanism gap: {} vs {}",
        victim_adaptive.throughput,
        victim_oblivious.throughput
    );
    // The aggressor's own bottleneck nodes are starved too (per-node
    // fairness collapses only under the adaptive mechanism).
    assert!(adaptive.per_job[0].fairness.cov > 2.0 * oblivious.per_job[0].fairness.cov);
    // Per-job latency percentiles: present, ordered, and consistent with
    // the mean for both jobs under both mechanisms.
    for (label, run) in [("adaptive", &adaptive), ("oblivious", &oblivious)] {
        for job in &run.per_job {
            let p50 = job.p50_latency.unwrap_or_else(|| panic!("{label}/{}: no p50", job.job));
            let p95 = job.p95_latency.unwrap();
            let p99 = job.p99_latency.unwrap();
            assert!(
                p50 <= p95 && p95 <= p99,
                "{label}/{}: percentiles out of order ({p50}, {p95}, {p99})",
                job.job
            );
            // The mean cannot exceed p99 by more than one histogram bin.
            assert!(
                p99 as f64 + 50.0 >= job.avg_latency,
                "{label}/{}: p99 {p99} vs mean {}",
                job.job,
                job.avg_latency
            );
        }
    }
    // The congested victim's tail must be visibly heavier under the
    // adaptive mechanism that starves it.
    assert!(
        victim_adaptive.p99_latency.unwrap() > victim_oblivious.p99_latency.unwrap(),
        "starved victim should show a heavier latency tail"
    );
}
