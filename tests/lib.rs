//! Shared helpers for the cross-crate integration tests.

use dragonfly_core::prelude::*;

/// A fast configuration on the paper's Figure 1 network (72 nodes):
/// short warm-up and measurement windows keep each test under a second
/// while leaving the bottleneck structure intact.
pub fn tiny_config(
    mechanism: MechanismSpec,
    arbiter: ArbiterPolicy,
    pattern: PatternSpec,
    load: f64,
) -> SimConfig {
    let mut cfg = SimConfig::small(mechanism, arbiter, pattern, load);
    cfg.params = DragonflyParams::figure1();
    cfg.warmup_cycles = 3_000;
    cfg.measure_cycles = 6_000;
    cfg
}

/// The reduced-scale (342-node) configuration with a shortened protocol,
/// for tests that need `h >= 3` (PB saturation detection) or a realistic
/// bottleneck ratio.
pub fn small_config(
    mechanism: MechanismSpec,
    arbiter: ArbiterPolicy,
    pattern: PatternSpec,
    load: f64,
) -> SimConfig {
    let mut cfg = SimConfig::small(mechanism, arbiter, pattern, load);
    cfg.warmup_cycles = 5_000;
    cfg.measure_cycles = 8_000;
    cfg
}

/// Injections of the ADVc bottleneck router (router `a-1` of group 0
/// under palmtree) vs the mean of the other routers of group 0.
pub fn bottleneck_vs_rest(result: &RunResult, params: &DragonflyParams) -> (f64, f64) {
    let a = params.a as usize;
    let group0 = &result.injected_per_router[..a];
    let bottleneck = group0[a - 1] as f64;
    let rest: f64 = group0[..a - 1].iter().map(|&c| c as f64).sum::<f64>() / (a - 1) as f64;
    (bottleneck, rest)
}
