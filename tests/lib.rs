//! Shared helpers for the cross-crate integration tests.

use dragonfly_core::prelude::*;

/// A fast configuration on the paper's Figure 1 network (72 nodes):
/// short warm-up and measurement windows keep each test under a second
/// while leaving the bottleneck structure intact.
pub fn tiny_config(
    mechanism: MechanismSpec,
    arbiter: ArbiterPolicy,
    pattern: PatternSpec,
    load: f64,
) -> SimConfig {
    let mut cfg = SimConfig::small(mechanism, arbiter, pattern, load);
    cfg.params = DragonflyParams::figure1();
    cfg.warmup_cycles = 3_000;
    cfg.measure_cycles = 6_000;
    cfg
}

/// The reduced-scale (342-node) configuration with a shortened protocol,
/// for tests that need `h >= 3` (PB saturation detection) or a realistic
/// bottleneck ratio.
pub fn small_config(
    mechanism: MechanismSpec,
    arbiter: ArbiterPolicy,
    pattern: PatternSpec,
    load: f64,
) -> SimConfig {
    let mut cfg = SimConfig::small(mechanism, arbiter, pattern, load);
    cfg.warmup_cycles = 5_000;
    cfg.measure_cycles = 8_000;
    cfg
}

/// Injections of the ADVc bottleneck router (router `a-1` of group 0
/// under palmtree) vs the mean of the other routers of group 0.
pub fn bottleneck_vs_rest(result: &RunResult, params: &DragonflyParams) -> (f64, f64) {
    let a = params.a as usize;
    let group0 = &result.injected_per_router[..a];
    let bottleneck = group0[a - 1] as f64;
    let rest: f64 = group0[..a - 1].iter().map(|&c| c as f64).sum::<f64>() / (a - 1) as f64;
    (bottleneck, rest)
}

/// MD5 (RFC 1321) digest as a lowercase hex string. The golden-output
/// tests digest serialized results with the same function ci.sh applies
/// to the CLI artifacts (`md5sum`), without pulling in an external crate.
pub fn md5_hex(data: &[u8]) -> String {
    #[rustfmt::skip]
    const S: [u32; 64] = [
        7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
        5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
        4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
        6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
    ];
    #[rustfmt::skip]
    const K: [u32; 64] = [
        0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
        0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
        0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
        0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
        0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
        0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
        0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
        0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
        0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
        0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
        0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
        0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
        0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
        0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
        0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
        0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
    ];
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());
    let (mut a0, mut b0, mut c0, mut d0) =
        (0x6745_2301u32, 0xefcd_ab89u32, 0x98ba_dcfeu32, 0x1032_5476u32);
    for chunk in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(chunk[4 * i..4 * i + 4].try_into().unwrap());
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f).wrapping_add(K[i]).wrapping_add(m[g]).rotate_left(S[i]),
            );
            a = tmp;
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }
    let mut out = String::with_capacity(32);
    for w in [a0, b0, c0, d0] {
        for byte in w.to_le_bytes() {
            out.push_str(&format!("{byte:02x}"));
        }
    }
    out
}

#[cfg(test)]
mod md5_tests {
    use super::md5_hex;

    #[test]
    fn rfc1321_vectors() {
        assert_eq!(md5_hex(b""), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(md5_hex(b"abc"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            md5_hex(b"The quick brown fox jumps over the lazy dog"),
            "9e107d9d372bb6826bd81d3542a419d6"
        );
        // Multi-block input (> 64 bytes) exercises the chunk loop.
        assert_eq!(
            md5_hex(&[b'a'; 1000]),
            "cabe45dcc9ae5b66ba86600cca6b8ba8"
        );
    }
}
