//! The paper's §III motivation, played out: an HPC application allocated
//! on `h+1` consecutive groups generates ADVc-like traffic even though
//! the application itself communicates *uniformly* between its processes.
//!
//! This example runs uniform traffic restricted to a consecutive slice of
//! groups (a "job"), versus the same job scattered over non-consecutive
//! groups, and compares the fairness of the routers inside the job.
//!
//! ```text
//! cargo run --release --example job_placement
//! ```

use dragonfly_core::df_traffic::Traffic;
use dragonfly_core::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniform traffic among the nodes of a fixed set of groups — what an
/// application allocated on those groups produces.
struct JobUniform {
    params: DragonflyParams,
    groups: Vec<u32>,
    rng: SmallRng,
}

impl Traffic for JobUniform {
    fn dest(&mut self, src: NodeId) -> NodeId {
        let per_group = self.params.a * self.params.p;
        loop {
            let g = self.groups[self.rng.gen_range(0..self.groups.len())];
            let n = NodeId(g * per_group + self.rng.gen_range(0..per_group));
            if n != src {
                return n;
            }
        }
    }

    fn name(&self) -> &'static str {
        "JOB-UN"
    }
}

fn run_job(params: DragonflyParams, job_groups: Vec<u32>, label: &str) {
    let cfg = SimConfig::small(
        MechanismSpec::InTransitMm,
        ArbiterPolicy::TransitPriority,
        PatternSpec::Uniform, // placeholder; we drive the sim manually
        0.4,
    );
    let topo = Topology::new(params, Arrangement::Palmtree);
    let engine_cfg = cfg.engine_config();
    let policy = cfg.mechanism.build(topo.clone(), &engine_cfg, 7);
    let mut net = dragonfly_core::df_engine::Network::new(
        topo,
        engine_cfg,
        policy,
        dragonfly_core::df_engine::NullSink,
    );
    let mut traffic = JobUniform {
        params,
        groups: job_groups.clone(),
        rng: SmallRng::seed_from_u64(3),
    };
    let mut injector = dragonfly_core::df_traffic::BernoulliInjector::new(0.4, 8, 5);
    let per_group = params.a * params.p;
    let job_nodes: Vec<NodeId> = job_groups
        .iter()
        .flat_map(|&g| (0..per_group).map(move |i| NodeId(g * per_group + i)))
        .collect();

    let warmup = 6_000;
    let measure = 12_000;
    for t in 0..(warmup + measure) {
        if t == warmup {
            net.reset_counters();
        }
        for &n in &job_nodes {
            if injector.fire() {
                let dst = traffic.dest(n);
                net.offer(n, dst);
            }
        }
        net.step();
    }

    // Fairness across the routers of the job's groups only.
    let a = params.a as usize;
    let counts: Vec<u64> = job_groups
        .iter()
        .flat_map(|&g| {
            net.counters().injected_per_router[g as usize * a..(g as usize + 1) * a].to_vec()
        })
        .collect();
    let fairness = FairnessReport::from_u64(&counts);
    println!("\n=== {label} (groups {job_groups:?}) ===");
    println!("  accepted load (whole net) : {:.4}", net.counters().throughput(params.nodes()));
    println!("  min / mean injections     : {:.0} / {:.0}", fairness.min, fairness.mean);
    println!("  max/min ratio             : {:.2}", fairness.max_min_ratio);
    println!("  CoV                       : {:.4}", fairness.cov);
    let g0 = job_groups[0] as usize;
    print!("  group {g0} per-router        :");
    for c in &net.counters().injected_per_router[g0 * a..(g0 + 1) * a] {
        print!(" {c:>6}");
    }
    println!();
}

fn main() {
    let params = DragonflyParams::small();
    println!(
        "job of {} groups on a {}-group Dragonfly, uniform traffic within the job",
        params.h + 1,
        params.groups()
    );

    // Consecutive allocation — the scheduler's simplest choice. Uniform
    // in-job traffic degenerates into ADVc at the network level (§III).
    let consecutive: Vec<u32> = (0..=params.h).collect();
    run_job(params, consecutive, "consecutive allocation");

    // Scattered allocation: same job size, groups spread out.
    let stride = params.groups() / (params.h + 1);
    let scattered: Vec<u32> = (0..=params.h).map(|i| i * stride).collect();
    run_job(params, scattered, "scattered allocation");

    println!(
        "\nThe consecutive job funnels its inter-group traffic through each \
         group's bottleneck router (palmtree arrangement), reproducing the \
         ADVc fairness hazard; scattering the groups spreads the exit \
         routers and restores balance."
    );
}
