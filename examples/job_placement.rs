//! The paper's §III motivation, played out: an HPC application allocated
//! on `h+1` consecutive groups generates ADVc-like traffic even though
//! the application itself communicates *uniformly* between its processes.
//!
//! Since PR 2 this example delegates to the workload subsystem: each
//! allocation is a one-job [`ScenarioSpec`] (uniform in-job pattern,
//! Bernoulli injection) run through the scenario runner, which reports
//! the job's own throughput, latency, and per-node injection fairness.
//!
//! ```text
//! cargo run --release --example job_placement
//! ```

use dragonfly_core::prelude::*;

fn job_scenario(params: DragonflyParams, placement: PlacementSpec, label: &str) -> ScenarioSpec {
    ScenarioSpec {
        name: label.into(),
        params,
        arrangement: Arrangement::Palmtree,
        // In-Trns-CRG is the mechanism the paper shows starving the ADVc
        // bottleneck router — the placement hazard is invisible under the
        // fair In-Trns-MM.
        mechanisms: vec![MechanismSpec::InTransitCrg],
        arbiter: ArbiterPolicy::TransitPriority,
        warmup_cycles: 6_000,
        measure_cycles: 12_000,
        telemetry: None,
        shards: None,
        jobs: vec![JobSpec {
            name: "app".into(),
            placement,
            pattern: PatternSpec::Uniform, // uniform *within* the job
            injection: InjectionSpec::Bernoulli,
            load: 0.7,
            start_cycle: None,
            stop_cycle: None,
        }],
    }
}

fn run_job(spec: &ScenarioSpec, groups: &[u32]) {
    let out = run_scenario(spec, &[3]).expect("scenario runs");
    let m = &out.mechanisms[0];
    let job = &m.per_job[0];
    let run = &m.runs[0];
    println!("\n=== {} (groups {groups:?}) ===", spec.name);
    println!("  job offered / accepted    : {:.4} / {:.4}", job.offered, job.throughput);
    println!("  job avg latency (cycles)  : {:.1}", job.avg_latency);
    println!("  min node injections       : {:.0}", job.min_injections);
    println!("  max/min ratio (per node)  : {:.2}", job.max_min_ratio);
    println!("  CoV (per node)            : {:.4}", job.cov);
    let a = spec.params.a as usize;
    let g0 = groups[0] as usize;
    print!("  group {g0} per-router        :");
    for c in &run.injected_per_router[g0 * a..(g0 + 1) * a] {
        print!(" {c:>6}");
    }
    println!();
}

fn main() {
    let params = DragonflyParams::small();
    println!(
        "job of {} groups on a {}-group Dragonfly, uniform traffic within the job",
        params.h + 1,
        params.groups()
    );

    // Consecutive allocation — the scheduler's simplest choice. Uniform
    // in-job traffic degenerates into ADVc at the network level (§III).
    let consecutive: Vec<u32> = (0..=params.h).collect();
    let spec = job_scenario(
        params,
        PlacementSpec::ConsecutiveGroups { first: 0, count: params.h + 1, slots: None },
        "consecutive allocation",
    );
    run_job(&spec, &consecutive);

    // Scattered allocation: same job size, groups spread out.
    let stride = params.groups() / (params.h + 1);
    let scattered: Vec<u32> = (0..=params.h).map(|i| i * stride).collect();
    let spec = job_scenario(
        params,
        PlacementSpec::Groups { groups: scattered.clone(), slots: None },
        "scattered allocation",
    );
    run_job(&spec, &scattered);

    println!(
        "\nThe consecutive job funnels all its inter-group traffic through \
         one bottleneck router per group (palmtree arrangement), whose \
         nodes are starved under transit priority — the ADVc fairness \
         hazard. Scattering the groups spreads the exit pressure across \
         several routers, lifting the worst-starved node."
    );
}
