//! Anatomy of the ADVc traffic pattern (the paper's Figure 1, on the same
//! 9-group, 72-node Dragonfly): shows why the h consecutive destination
//! groups funnel through one bottleneck router under the palmtree
//! arrangement, and how other arrangements scatter them.
//!
//! ```text
//! cargo run --release --example advc_anatomy
//! ```

use dragonfly_core::prelude::*;

fn describe(topo: &Topology, label: &str) {
    let params = topo.params();
    println!("\n=== {label} ===");
    let g0 = GroupId(0);
    println!("group 0 exit routers for the {} consecutive groups:", params.h);
    for k in 1..=params.h {
        let dst = GroupId(k % params.groups());
        let (exit, port) = topo.exit_to_group(g0, dst);
        let (entry, _) = topo.global_peer(exit, port);
        println!(
            "  +{k}: exits via R{} (global port {port}), enters group {k} at R{}",
            exit.local_index(params),
            entry.local_index(params),
        );
    }
    let total = (0..params.groups())
        .filter(|&g| topo.advc_overlap_is_total(GroupId(g)))
        .count();
    println!(
        "groups whose h consecutive destinations share one exit router: {total}/{}",
        params.groups()
    );
}

fn main() {
    // The paper's Figure 1 network: h = 2, 9 groups, 72 nodes.
    let params = DragonflyParams::figure1();
    println!(
        "Dragonfly p={} a={} h={}: {} groups, {} routers, {} nodes",
        params.p,
        params.a,
        params.h,
        params.groups(),
        params.routers(),
        params.nodes()
    );

    describe(&Topology::new(params, Arrangement::Palmtree), "palmtree (paper)");
    describe(&Topology::new(params, Arrangement::Consecutive), "consecutive");
    describe(&Topology::new(params, Arrangement::Random { seed: 7 }), "random");

    // Where does ADVc traffic actually go? Sample the generator.
    println!("\n=== ADVc destination histogram (source = node 0, group 0) ===");
    let mut pattern = PatternSpec::AdvConsecutive { spread: None }.build(params, 42);
    let mut per_group = vec![0u32; params.groups() as usize];
    for _ in 0..2000 {
        let dst = pattern.dest(NodeId(0));
        per_group[dst.group(&params).idx()] += 1;
    }
    for (g, count) in per_group.iter().enumerate() {
        if *count > 0 {
            println!("  group {g}: {count:>5}  {}", "#".repeat((count / 40) as usize));
        }
    }
    println!(
        "\nMIN-routing throughput caps: ADV+1 = 1/(a*p) = {:.4}, ADVc = h/(a*p) = {:.4} phits/node/cycle",
        1.0 / (params.a * params.p) as f64,
        params.h as f64 / (params.a * params.p) as f64,
    );
}
