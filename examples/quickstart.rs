//! Quickstart: simulate one Dragonfly configuration and print every
//! metric the library produces.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dragonfly_core::prelude::*;

fn main() {
    // A reduced-scale canonical Dragonfly (p=3, a=6, h=3 → 342 nodes)
    // running the paper's headline scenario: ADVc traffic, in-transit
    // adaptive routing with the Mixed-mode misrouting policy, and
    // transit-over-injection priority at the allocators.
    let cfg = SimConfig::small(
        MechanismSpec::InTransitMm,
        ArbiterPolicy::TransitPriority,
        PatternSpec::AdvConsecutive { spread: None },
        0.4, // offered load in phits/(node·cycle)
    );

    println!(
        "simulating {} nodes, {} routers, {} groups — {} under {} traffic",
        cfg.params.nodes(),
        cfg.params.routers(),
        cfg.params.groups(),
        cfg.mechanism.label(),
        cfg.pattern.label(),
    );

    let result = run_single(&cfg);

    println!("\noffered load    : {:.4} phits/node/cycle", result.offered);
    println!("accepted load   : {:.4} phits/node/cycle", result.throughput);
    println!("mean latency    : {:.1} cycles", result.avg_latency);
    if let Some(p99) = result.p99_latency {
        println!("p99 latency     : <= {p99} cycles");
    }

    let [base, mis, lq, gq, inj] = result.components;
    println!("\nlatency breakdown (Figure 3 components):");
    println!("  base (minimal path) : {base:>8.1}");
    println!("  misrouting          : {mis:>8.1}");
    println!("  local queues        : {lq:>8.1}");
    println!("  global queues       : {gq:>8.1}");
    println!("  injection queues    : {inj:>8.1}");

    println!("\nfairness over per-router injections (Table II metrics):");
    println!("  min injections      : {:>8.1}", result.fairness.min);
    println!("  max/min ratio       : {:>8.2}", result.fairness.max_min_ratio);
    println!("  CoV (sigma/mu)      : {:>8.4}", result.fairness.cov);
    println!("  Jain index          : {:>8.4}", result.fairness.jain);

    // The ADVc bottleneck router is the last router of each group under
    // the palmtree arrangement.
    let a = cfg.params.a as usize;
    let group0 = &result.injected_per_router[..a];
    println!("\ninjections, group 0 (bottleneck is R{}):", a - 1);
    for (i, count) in group0.iter().enumerate() {
        println!("  R{i:<2} {count:>7}  {}", "#".repeat((count / 50) as usize));
    }
}
