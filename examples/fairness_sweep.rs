//! Fairness-vs-load sweep: how the CoV of per-router injections evolves
//! with offered load for the three routing classes under ADVc, with and
//! without transit-over-injection priority.
//!
//! ```text
//! cargo run --release --example fairness_sweep
//! ```

use dragonfly_core::prelude::*;

fn main() {
    let loads = [0.1, 0.2, 0.3, 0.4, 0.5];
    let mechanisms = [
        MechanismSpec::ObliviousCrg,
        MechanismSpec::SourceCrg,
        MechanismSpec::InTransitMm,
    ];
    let arbiters = [
        (ArbiterPolicy::TransitPriority, "transit priority"),
        (ArbiterPolicy::RoundRobin, "no priority"),
    ];

    for (arbiter, arb_label) in arbiters {
        println!("\n=== CoV of per-router injections — ADVc, {arb_label} ===");
        print!("{:>6}", "load");
        for m in &mechanisms {
            print!("{:>14}", m.label());
        }
        println!();
        for &load in &loads {
            print!("{load:>6.2}");
            for m in &mechanisms {
                let cfg = SimConfig::small(
                    *m,
                    arbiter,
                    PatternSpec::AdvConsecutive { spread: None },
                    load,
                );
                let r = run_single(&cfg);
                print!("{:>14.4}", r.fairness.cov);
            }
            println!();
        }
    }
    println!("\nOblivious stays flat; adaptive mechanisms grow unfair as the");
    println!("bottleneck router's links saturate (paper §V).");
}
